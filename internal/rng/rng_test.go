package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: streams with equal seeds diverged: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams with different seeds collided %d/1000 times", same)
	}
}

func TestSubStreamsDiffer(t *testing.T) {
	a := NewWithStream(7, 0)
	b := NewWithStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("sub-streams of one seed collided %d/1000 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// The child must be deterministic given the parent's history.
	parent2 := New(99)
	child2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
	// Parent and child should not produce identical sequences.
	p := New(99)
	c := p.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if p.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("parent and child streams collided %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	s := New(4)
	for i := 0; i < 100000; i++ {
		if f := s.Float64Open(); f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(6)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(8)
	const buckets = 10
	const n = 100000
	var count [buckets]int
	for i := 0; i < n; i++ {
		count[s.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range count {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates too far from %v", b, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(9)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(10)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(12)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("Shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", p)
	}
	if s.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
}

func TestBoolPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bool(1.5) did not panic")
		}
	}()
	New(1).Bool(1.5)
}

func TestStateRoundTrip(t *testing.T) {
	s := New(77)
	for i := 0; i < 17; i++ {
		s.Uint64()
	}
	st := s.State()
	r, err := Restore(st)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := 0; i < 100; i++ {
		if a, b := s.Uint64(), r.Uint64(); a != b {
			t.Fatalf("restored stream diverged at %d: %d != %d", i, a, b)
		}
	}
}

func TestRestoreRejectsEvenIncrement(t *testing.T) {
	if _, err := Restore(State{IncLo: 2}); err == nil {
		t.Fatal("Restore accepted an even increment")
	}
}

func TestSource64Adapter(t *testing.T) {
	s := New(21)
	src := Source64{S: s}
	for i := 0; i < 1000; i++ {
		if v := src.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

// Property: Uint64n(n) < n for all n > 0.
func TestUint64nPropertyBound(t *testing.T) {
	s := New(31)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: two streams restored from the same state produce equal prefixes.
func TestRestorePropertyEqualPrefix(t *testing.T) {
	f := func(seed uint64, skip uint8) bool {
		s := New(seed)
		for i := 0; i < int(skip); i++ {
			s.Uint64()
		}
		st := s.State()
		a, err1 := Restore(st)
		b, err2 := Restore(st)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.Float64()
	}
	_ = sink
}

// TestReseedMatchesNew: a reseeded stream is bit-identical to a fresh
// New/NewWithStream stream — the in-place reuse contract the fleet
// instance lifecycle depends on.
func TestReseedMatchesNew(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		s.Uint64() // scramble the state
	}
	for _, seed := range []uint64{0, 1, 42, 1 << 63} {
		s.Reseed(seed)
		fresh := New(seed)
		for i := 0; i < 64; i++ {
			if got, want := s.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: reseeded %d != fresh %d", seed, i, got, want)
			}
		}
		s.ReseedWithStream(seed, 7)
		freshSel := NewWithStream(seed, 7)
		if s.Uint64() != freshSel.Uint64() {
			t.Fatalf("ReseedWithStream(%d, 7) diverges from NewWithStream", seed)
		}
	}
}

// TestSplitIntoMatchesSplit: SplitInto writes the same child Split would
// return and advances the parent identically.
func TestSplitIntoMatchesSplit(t *testing.T) {
	a, b := New(9), New(9)
	var child Stream
	child.Reseed(999) // pre-dirty the destination
	a.SplitInto(&child)
	ref := b.Split()
	for i := 0; i < 64; i++ {
		if child.Uint64() != ref.Uint64() {
			t.Fatalf("SplitInto child diverges from Split at draw %d", i)
		}
	}
	// Parents advanced identically.
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("parents diverge after split at draw %d", i)
		}
	}
}

// TestReseedSplitIntoAllocationFree: the reuse path performs no heap
// allocations — it is the per-instance seed derivation of the fleet
// layer's zero-allocation lifecycle.
func TestReseedSplitIntoAllocationFree(t *testing.T) {
	var root, pol, sim Stream
	seed := uint64(1)
	allocs := testing.AllocsPerRun(100, func() {
		root.Reseed(seed)
		root.SplitInto(&pol)
		root.SplitInto(&sim)
		seed++
	})
	if allocs != 0 {
		t.Fatalf("Reseed+SplitInto allocates %.1f times per instance", allocs)
	}
}
