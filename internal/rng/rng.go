// Package rng provides deterministic, splittable pseudo-random number
// streams for simulation.
//
// Reproducibility is a hard requirement for the experiment harness: every
// figure and table in EXPERIMENTS.md must regenerate bit-identically from a
// seed. The standard library's math/rand is seedable but its stream layout
// is not guaranteed across Go releases, so this package implements PCG-XSL-
// RR-128/64 (O'Neill's PCG family) from scratch. The generator state is two
// uint64 words; output is a 64-bit permuted xorshift of the 128-bit LCG
// state.
//
// Streams are splittable: Split derives an independent child stream from a
// parent, so concurrent simulation replicas never share state and adding a
// consumer never perturbs existing streams.
package rng

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Stream is a deterministic pseudo-random number generator. It implements
// the subset of math/rand methods the simulator needs plus splitting.
// The zero value is not valid; use New or Split.
type Stream struct {
	hi, lo uint64 // 128-bit LCG state
	incHi  uint64 // stream selector (must be odd in low word)
	incLo  uint64
}

// LCG multiplier for the 128-bit PCG state (from the PCG reference
// implementation).
const (
	mulHi = 2549297995355413924
	mulLo = 4865540595714422341
)

// New returns a Stream seeded from seed with the default stream selector.
// Distinct seeds give statistically independent streams.
func New(seed uint64) *Stream {
	return NewWithStream(seed, 0)
}

// NewWithStream returns a Stream seeded from seed on sub-stream sel. The
// (seed, sel) pair fully determines the output sequence.
func NewWithStream(seed, sel uint64) *Stream {
	s := &Stream{}
	s.ReseedWithStream(seed, sel)
	return s
}

// Reseed reinitializes s in place so that it produces exactly the
// sequence New(seed) would, without allocating. It is the reuse path of
// New: callers that cycle through many seeds (one fleet instance per
// seed) hold one Stream value and reseed it per instance.
func (s *Stream) Reseed(seed uint64) { s.ReseedWithStream(seed, 0) }

// ReseedWithStream is Reseed onto sub-stream sel; it is the in-place
// equivalent of NewWithStream(seed, sel).
func (s *Stream) ReseedWithStream(seed, sel uint64) {
	// Derive the increment from the selector; the low word must be odd.
	s.incHi = splitmix(&sel)
	s.incLo = splitmix(&sel) | 1
	// Standard PCG seeding: state = 0, advance, add seed, advance.
	s.hi, s.lo = 0, 0
	s.step()
	s.lo, _ = add128(s.lo, seed)
	h := splitmix(&seed)
	s.hi += h
	s.step()
}

// splitmix is SplitMix64; used only for seeding and splitting.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func add128(aLo, bLo uint64) (lo uint64, carry uint64) {
	lo, c := bits.Add64(aLo, bLo, 0)
	return lo, c
}

// step advances the 128-bit LCG state.
func (s *Stream) step() {
	// state = state*mul + inc (128-bit arithmetic).
	hi, lo := bits.Mul64(s.lo, mulLo)
	hi += s.hi*mulLo + s.lo*mulHi
	lo, c := bits.Add64(lo, s.incLo, 0)
	hi += s.incHi + c
	s.hi, s.lo = hi, lo
}

// Uint64 returns the next 64-bit value in the stream.
func (s *Stream) Uint64() uint64 {
	s.step()
	// XSL-RR output function: xor-fold the state, rotate by the top bits.
	rot := uint(s.hi >> 58)
	return bits.RotateLeft64(s.hi^s.lo, -int(rot))
}

// FillUint64 fills dst with the next len(dst) values of the stream —
// exactly the sequence len(dst) successive Uint64 calls would produce.
// The LCG step and XSL-RR output function are inlined into one loop with
// the state in registers, so bulk consumers (batched arrival sampling)
// amortize the per-call state load/store that dominates single draws.
func (s *Stream) FillUint64(dst []uint64) {
	hi, lo := s.hi, s.lo
	incHi, incLo := s.incHi, s.incLo
	for i := range dst {
		h, l := bits.Mul64(lo, mulLo)
		h += hi*mulLo + lo*mulHi
		l, c := bits.Add64(l, incLo, 0)
		h += incHi + c
		hi, lo = h, l
		rot := uint(hi >> 58)
		dst[i] = bits.RotateLeft64(hi^lo, -int(rot))
	}
	s.hi, s.lo = hi, lo
}

// FillFloat64 fills dst with uniform [0, 1) values — exactly the
// sequence len(dst) successive Float64 calls would produce — via one
// FillUint64 pass over dst's bits.
func (s *Stream) FillFloat64(dst []float64) {
	hi, lo := s.hi, s.lo
	incHi, incLo := s.incHi, s.incLo
	for i := range dst {
		h, l := bits.Mul64(lo, mulLo)
		h += hi*mulLo + lo*mulHi
		l, c := bits.Add64(l, incLo, 0)
		h += incHi + c
		hi, lo = h, l
		rot := uint(hi >> 58)
		dst[i] = float64(bits.RotateLeft64(hi^lo, -int(rot))>>11) / (1 << 53)
	}
	s.hi, s.lo = hi, lo
}

// Split derives an independent child stream. The parent advances by one
// draw; the child's sequence shares no state with the parent afterwards.
func (s *Stream) Split() *Stream {
	child := &Stream{}
	s.SplitInto(child)
	return child
}

// SplitInto derives an independent child stream into dst without
// allocating: dst produces exactly the sequence Split's return value
// would, and the parent advances identically. dst may be any Stream
// value (its prior state is overwritten); it must not alias s.
func (s *Stream) SplitInto(dst *Stream) {
	seed := s.Uint64()
	sel := s.Uint64()
	dst.ReseedWithStream(seed, sel)
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1); useful for inverse-CDF
// transforms that must not see exactly 0 (e.g. -log(u)).
func (s *Stream) Float64Open() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// NormFloat64 returns a standard normal variate via the polar
// (Marsaglia) method.
func (s *Stream) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an Exp(1) variate via inverse CDF.
func (s *Stream) ExpFloat64() float64 {
	return -math.Log(s.Float64Open())
}

// Perm returns a uniform random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the n elements addressed by swap using Fisher–Yates.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle called with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Bool returns true with probability p. It panics if p is outside [0, 1].
func (s *Stream) Bool(p float64) bool {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("rng: Bool probability %v out of [0,1]", p))
	}
	return s.Float64() < p
}

// State returns the serializable state of the stream.
func (s *Stream) State() State {
	return State{Hi: s.hi, Lo: s.lo, IncHi: s.incHi, IncLo: s.incLo}
}

// State is a snapshot of a Stream, suitable for checkpointing.
type State struct {
	Hi, Lo, IncHi, IncLo uint64
}

// Restore returns a Stream positioned exactly at st. It returns an error if
// the state is invalid (the increment low word must be odd).
func Restore(st State) (*Stream, error) {
	if st.IncLo&1 == 0 {
		return nil, errors.New("rng: invalid state: increment must be odd")
	}
	return &Stream{hi: st.Hi, lo: st.Lo, incHi: st.IncHi, incLo: st.IncLo}, nil
}

// Source64 adapts a Stream to math/rand.Source64. The adapter lets code
// that wants a *rand.Rand (e.g. testing/quick) share determinism with the
// simulator.
type Source64 struct{ S *Stream }

// Uint64 implements rand.Source64.
func (a Source64) Uint64() uint64 { return a.S.Uint64() }

// Int63 implements rand.Source.
func (a Source64) Int63() int64 { return int64(a.S.Uint64() >> 1) }

// Seed implements rand.Source; reseeding resets the stream in place.
func (a Source64) Seed(seed int64) { *a.S = *New(uint64(seed)) }
