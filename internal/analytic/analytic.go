// Package analytic is the repository's analytical twin: a ladder of
// closed-form steady-state oracles for the regimes the simulators can be
// pinned to. Each oracle couples a prediction (waiting time, blocking
// probability, mean power, availability, optimal cost) with a validity
// predicate — AppliesTo(Regime) — naming the exact arrival law, service
// law, policy, and queue configuration under which the formula is exact.
// The conformance harness in internal/experiment builds simulator
// configurations matching a Regime, checks AppliesTo, and asserts that
// simulated steady-state output falls within a confidence interval of the
// oracle's prediction; docs/ANALYTIC.md derives every formula.
//
// The ladder, bottom to top:
//
//	MG1        — M/M/1 and M/D/1 sojourn/backlog via Pollaczek–Khinchine
//	MM1K       — M/M/1/K blocking probability and mean system size
//	SleepCycle — renewal-reward mean power for sleep-cycling policies
//	             (greedy-off, timeout with threshold ≤ service time)
//	Availability — Exp(MTBF)/Exp(repair) alternating-renewal uptime
//	OptimalCost  — LP/MDP-optimal average cost, a bound no simulated
//	               policy may beat (optimal.go)
package analytic

import (
	"fmt"
	"math"
)

// ---------------------------------------------------------------------------
// Regimes

// Arrival, service, and policy law names a Regime is described with.
const (
	// ArrivalPoisson is a homogeneous Poisson process (continuous time).
	ArrivalPoisson = "poisson"
	// ArrivalBernoulli is one-arrival-per-slot Bernoulli (slotted time).
	ArrivalBernoulli = "bernoulli"
	// ServiceDeterministic is fixed-duration sequential service.
	ServiceDeterministic = "deterministic"
	// ServiceExponential is i.i.d. exponential sequential service.
	ServiceExponential = "exponential"
	// PolicyAlwaysOn never leaves the service state.
	PolicyAlwaysOn = "always-on"
	// PolicySleepCycle sleeps deep the moment the queue empties:
	// greedy-off, or a continuous-time timeout whose threshold does not
	// exceed the service time (see SleepCycle.AppliesTo).
	PolicySleepCycle = "sleep-cycle"
	// PolicyOptimal is the exact MDP/LP-optimal stationary policy.
	PolicyOptimal = "optimal"
)

// Regime describes the simulated configuration an oracle is asked to
// predict: the arrival law, the service law, the policy family, and the
// queue bound. Oracles reject regimes outside their assumptions, so a
// conformance check that would silently compare a formula against a
// system it does not model fails loudly instead.
type Regime struct {
	// Arrivals is the arrival law (ArrivalPoisson or ArrivalBernoulli).
	Arrivals string
	// Service is the service law (ServiceDeterministic or
	// ServiceExponential).
	Service string
	// Policy is the policy family the oracle must cover.
	Policy string
	// Timeout is the idle threshold in seconds for sleep-cycling timeout
	// policies (0 = greedy-off).
	Timeout float64
	// SystemCap bounds the number of requests in the system, counting
	// the one in service; 0 means unbounded.
	SystemCap int
	// Faults reports whether crash/repair or transient-failure injection
	// is active.
	Faults bool
}

// ---------------------------------------------------------------------------
// M/G/1 — Pollaczek–Khinchine

// MG1 is the M/G/1 queue: Poisson(Lambda) arrivals, i.i.d. service with
// first two moments (MeanS, MeanS2), a single work-conserving server, and
// an unbounded FIFO queue. The Pollaczek–Khinchine formula gives the mean
// queueing delay exactly; everything else follows from Little's law.
type MG1 struct {
	// Lambda is the arrival rate in requests per second.
	Lambda float64
	// MeanS is E[S], the mean service time in seconds.
	MeanS float64
	// MeanS2 is E[S²], the second moment of the service time.
	MeanS2 float64
}

// NewMM1 builds the exponential-service special case (E[S] = 1/mu,
// E[S²] = 2/mu²).
func NewMM1(lambda, mu float64) (MG1, error) {
	q := MG1{Lambda: lambda, MeanS: 1 / mu, MeanS2: 2 / (mu * mu)}
	if !(mu > 0) || math.IsInf(mu, 1) {
		return MG1{}, fmt.Errorf("analytic: M/M/1 service rate %v must be positive and finite", mu)
	}
	if err := q.Validate(); err != nil {
		return MG1{}, err
	}
	return q, nil
}

// NewMD1 builds the deterministic-service special case (E[S] = s,
// E[S²] = s²).
func NewMD1(lambda, s float64) (MG1, error) {
	q := MG1{Lambda: lambda, MeanS: s, MeanS2: s * s}
	if err := q.Validate(); err != nil {
		return MG1{}, err
	}
	return q, nil
}

// Validate checks parameter sanity and stability (ρ < 1).
func (q MG1) Validate() error {
	if !(q.Lambda > 0) || math.IsInf(q.Lambda, 1) {
		return fmt.Errorf("analytic: M/G/1 arrival rate %v must be positive and finite", q.Lambda)
	}
	if !(q.MeanS > 0) || math.IsInf(q.MeanS, 1) {
		return fmt.Errorf("analytic: M/G/1 mean service %v must be positive and finite", q.MeanS)
	}
	// Jensen: E[S²] ≥ E[S]².
	if !(q.MeanS2 >= q.MeanS*q.MeanS) || math.IsInf(q.MeanS2, 1) {
		return fmt.Errorf("analytic: M/G/1 second moment %v below E[S]²=%v", q.MeanS2, q.MeanS*q.MeanS)
	}
	if rho := q.Rho(); !(rho < 1) {
		return fmt.Errorf("analytic: M/G/1 utilization %v must be < 1", rho)
	}
	return nil
}

// Rho returns the utilization λ·E[S].
func (q MG1) Rho() float64 { return q.Lambda * q.MeanS }

// MeanWait returns Wq, the mean time in queue before service starts:
// Wq = λ·E[S²] / (2(1−ρ)).
func (q MG1) MeanWait() float64 {
	return q.Lambda * q.MeanS2 / (2 * (1 - q.Rho()))
}

// MeanSojourn returns W = Wq + E[S], the mean arrival-to-completion time
// — what ctsim.Metrics.MeanWaitSeconds measures.
func (q MG1) MeanSojourn() float64 { return q.MeanWait() + q.MeanS }

// MeanNumber returns L = λW, the time-average number in system (queued
// plus in service) — what ctsim.Metrics.MeanBacklog measures.
func (q MG1) MeanNumber() float64 { return q.Lambda * q.MeanSojourn() }

// AppliesTo accepts Poisson arrivals, an unbounded queue, no faults, the
// always-on policy (the server must never park), and the service law
// matching the moments: deterministic requires E[S²] = E[S]²,
// exponential requires E[S²] = 2·E[S]².
func (q MG1) AppliesTo(r Regime) error {
	if r.Arrivals != ArrivalPoisson {
		return fmt.Errorf("analytic: M/G/1 needs %s arrivals, regime has %q", ArrivalPoisson, r.Arrivals)
	}
	if r.SystemCap != 0 {
		return fmt.Errorf("analytic: M/G/1 needs an unbounded queue, regime caps the system at %d", r.SystemCap)
	}
	if r.Faults {
		return fmt.Errorf("analytic: M/G/1 does not model faults")
	}
	if r.Policy != PolicyAlwaysOn {
		return fmt.Errorf("analytic: M/G/1 needs a work-conserving %s server, regime runs %q", PolicyAlwaysOn, r.Policy)
	}
	m2 := q.MeanS * q.MeanS
	switch r.Service {
	case ServiceDeterministic:
		if math.Abs(q.MeanS2-m2) > 1e-12*m2 {
			return fmt.Errorf("analytic: deterministic service implies E[S²]=E[S]², oracle has %v vs %v", q.MeanS2, m2)
		}
	case ServiceExponential:
		if math.Abs(q.MeanS2-2*m2) > 1e-12*m2 {
			return fmt.Errorf("analytic: exponential service implies E[S²]=2E[S]², oracle has %v vs %v", q.MeanS2, 2*m2)
		}
	default:
		return fmt.Errorf("analytic: M/G/1 oracle covers %s or %s service, regime has %q", ServiceDeterministic, ServiceExponential, r.Service)
	}
	return nil
}

// ---------------------------------------------------------------------------
// M/M/1/K — bounded queue

// MM1K is the M/M/1/K loss system: Poisson(Lambda) arrivals,
// exponential(Mu) service, and at most K requests in the system counting
// the one in service; arrivals finding the system full are lost.
type MM1K struct {
	// Lambda is the arrival rate in requests per second.
	Lambda float64
	// Mu is the service rate in requests per second.
	Mu float64
	// K is the system capacity (queue + in service).
	K int
}

// Validate checks parameter sanity. ρ ≥ 1 is legal — the finite system
// is always stable.
func (q MM1K) Validate() error {
	if !(q.Lambda > 0) || math.IsInf(q.Lambda, 1) {
		return fmt.Errorf("analytic: M/M/1/K arrival rate %v must be positive and finite", q.Lambda)
	}
	if !(q.Mu > 0) || math.IsInf(q.Mu, 1) {
		return fmt.Errorf("analytic: M/M/1/K service rate %v must be positive and finite", q.Mu)
	}
	if q.K < 1 {
		return fmt.Errorf("analytic: M/M/1/K capacity %d must be >= 1", q.K)
	}
	return nil
}

// prob returns the stationary probability p_n of n in system:
// p_n = (1−ρ)ρⁿ/(1−ρ^(K+1)), degenerating to 1/(K+1) at ρ = 1.
func (q MM1K) prob(n int) float64 {
	rho := q.Lambda / q.Mu
	if math.Abs(rho-1) < 1e-12 {
		return 1 / float64(q.K+1)
	}
	return (1 - rho) * math.Pow(rho, float64(n)) / (1 - math.Pow(rho, float64(q.K+1)))
}

// BlockingProb returns p_K, the loss fraction by PASTA.
func (q MM1K) BlockingProb() float64 { return q.prob(q.K) }

// MeanNumber returns L = Σ n·p_n, the time-average number in system.
func (q MM1K) MeanNumber() float64 {
	l := 0.0
	for n := 1; n <= q.K; n++ {
		l += float64(n) * q.prob(n)
	}
	return l
}

// MeanSojourn returns the mean arrival-to-completion time of accepted
// requests, W = L / (λ(1−p_K)) by Little's law on the admitted stream.
func (q MM1K) MeanSojourn() float64 {
	return q.MeanNumber() / (q.Lambda * (1 - q.BlockingProb()))
}

// AppliesTo accepts Poisson arrivals, exponential service, the always-on
// policy, no faults, and a system capacity equal to K.
func (q MM1K) AppliesTo(r Regime) error {
	if r.Arrivals != ArrivalPoisson {
		return fmt.Errorf("analytic: M/M/1/K needs %s arrivals, regime has %q", ArrivalPoisson, r.Arrivals)
	}
	if r.Service != ServiceExponential {
		return fmt.Errorf("analytic: M/M/1/K needs %s service, regime has %q", ServiceExponential, r.Service)
	}
	if r.Policy != PolicyAlwaysOn {
		return fmt.Errorf("analytic: M/M/1/K needs a work-conserving %s server, regime runs %q", PolicyAlwaysOn, r.Policy)
	}
	if r.SystemCap != q.K {
		return fmt.Errorf("analytic: M/M/1/K oracle has capacity %d, regime caps the system at %d", q.K, r.SystemCap)
	}
	if r.Faults {
		return fmt.Errorf("analytic: M/M/1/K does not model faults")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Sleep-cycle power — renewal reward

// SleepCycle predicts the long-run mean power of a sleep-cycling policy
// on a three-role PSM under Poisson arrivals and deterministic sequential
// service: the device serves at ActivePower, and the moment the queue
// empties it transitions to the deep state (DownLatency seconds costing
// DownEnergy joules), sleeps at SleepPower until the next arrival, then
// wakes (UpLatency, UpEnergy) and serves the accumulated backlog. Both
// ctsim greedy-off and the continuous-time timeout with threshold
// Timeout ≤ ServiceTime behave exactly like this: at a queue-emptying
// completion the served request arrived at least ServiceTime seconds ago,
// so the idle clock already exceeds the threshold and the policy commands
// deep immediately — the shallow state is never occupied in steady state.
//
// One regeneration cycle runs from queue-emptying completion to
// queue-emptying completion:
//
//	E[sleep]  = e^(−λd)/λ                   (memoryless residual after the
//	                                         down transition of d seconds)
//	E[T_pre]  = d + E[sleep] + u            (down + sleep + up)
//	E[N₀]     = λd + λu + e^(−λd)           (backlog when service resumes)
//	E[B]      = E[N₀]·s/(1−ρ),  ρ = λs     (M/G/1 busy period per customer)
//	E[C]      = E[T_pre] + E[B]
//	E[energy] = DownEnergy + UpEnergy + SleepPower·E[sleep] + ActivePower·E[B]
//	power     = E[energy]/E[C]              (renewal-reward theorem)
type SleepCycle struct {
	// Lambda is the Poisson arrival rate in requests per second.
	Lambda float64
	// ServiceTime is the deterministic service time in seconds.
	ServiceTime float64
	// DownLatency and DownEnergy parameterize the transition into the
	// deep state; UpLatency and UpEnergy the transition out of it.
	DownLatency, DownEnergy float64
	UpLatency, UpEnergy     float64
	// SleepPower is the deep state's power; ActivePower the service
	// state's.
	SleepPower, ActivePower float64
	// Timeout is the policy's idle threshold in seconds (0 = greedy-off).
	// Must not exceed ServiceTime for the oracle to be exact.
	Timeout float64
}

// Validate checks parameter sanity, stability, and the threshold bound.
func (c SleepCycle) Validate() error {
	if !(c.Lambda > 0) || math.IsInf(c.Lambda, 1) {
		return fmt.Errorf("analytic: sleep-cycle arrival rate %v must be positive and finite", c.Lambda)
	}
	if !(c.ServiceTime > 0) || math.IsInf(c.ServiceTime, 1) {
		return fmt.Errorf("analytic: sleep-cycle service time %v must be positive and finite", c.ServiceTime)
	}
	if rho := c.Lambda * c.ServiceTime; !(rho < 1) {
		return fmt.Errorf("analytic: sleep-cycle utilization %v must be < 1", rho)
	}
	for _, v := range []struct {
		name string
		x    float64
	}{
		{"down latency", c.DownLatency}, {"down energy", c.DownEnergy},
		{"up latency", c.UpLatency}, {"up energy", c.UpEnergy},
		{"sleep power", c.SleepPower}, {"active power", c.ActivePower},
	} {
		if v.x < 0 || math.IsNaN(v.x) || math.IsInf(v.x, 0) {
			return fmt.Errorf("analytic: sleep-cycle %s %v must be finite and >= 0", v.name, v.x)
		}
	}
	if c.Timeout < 0 || c.Timeout > c.ServiceTime {
		return fmt.Errorf("analytic: sleep-cycle timeout %v must lie in [0, service time %v] — beyond that the idle clock can expire mid-backlog and the cycle structure breaks", c.Timeout, c.ServiceTime)
	}
	return nil
}

// meanSleep returns E[sleep] = e^(−λd)/λ.
func (c SleepCycle) meanSleep() float64 {
	return math.Exp(-c.Lambda*c.DownLatency) / c.Lambda
}

// MeanCycle returns E[C], the mean regeneration-cycle length in seconds.
func (c SleepCycle) MeanCycle() float64 {
	pre := c.DownLatency + c.meanSleep() + c.UpLatency
	n0 := c.Lambda*c.DownLatency + c.Lambda*c.UpLatency + math.Exp(-c.Lambda*c.DownLatency)
	busy := n0 * c.ServiceTime / (1 - c.Lambda*c.ServiceTime)
	return pre + busy
}

// MeanPower returns the long-run mean power in watts.
func (c SleepCycle) MeanPower() float64 {
	sleep := c.meanSleep()
	n0 := c.Lambda*c.DownLatency + c.Lambda*c.UpLatency + math.Exp(-c.Lambda*c.DownLatency)
	busy := n0 * c.ServiceTime / (1 - c.Lambda*c.ServiceTime)
	energy := c.DownEnergy + c.UpEnergy + c.SleepPower*sleep + c.ActivePower*busy
	return energy / (c.DownLatency + sleep + c.UpLatency + busy)
}

// AppliesTo accepts Poisson arrivals, deterministic service, an unbounded
// queue, no faults, and the sleep-cycle policy family with a threshold
// matching the oracle's.
func (c SleepCycle) AppliesTo(r Regime) error {
	if r.Arrivals != ArrivalPoisson {
		return fmt.Errorf("analytic: sleep-cycle needs %s arrivals, regime has %q", ArrivalPoisson, r.Arrivals)
	}
	if r.Service != ServiceDeterministic {
		return fmt.Errorf("analytic: sleep-cycle needs %s service, regime has %q", ServiceDeterministic, r.Service)
	}
	if r.Policy != PolicySleepCycle {
		return fmt.Errorf("analytic: sleep-cycle oracle covers the %s family, regime runs %q", PolicySleepCycle, r.Policy)
	}
	if r.Timeout != c.Timeout {
		return fmt.Errorf("analytic: sleep-cycle oracle assumes threshold %v, regime uses %v", c.Timeout, r.Timeout)
	}
	if r.SystemCap != 0 {
		return fmt.Errorf("analytic: sleep-cycle needs an unbounded queue, regime caps the system at %d", r.SystemCap)
	}
	if r.Faults {
		return fmt.Errorf("analytic: sleep-cycle does not model faults")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Availability — alternating renewal

// Availability predicts the long-run uptime fraction of a device under
// ctsim's crash/repair fault model: time-to-failure is Exp with mean MTBF
// measured in operating time (the crash clock pauses while the device is
// down), repair is Exp with mean MeanRepair in wall time. Up and down
// periods therefore alternate independently, and the renewal-reward
// theorem gives availability MTBF/(MTBF + MeanRepair) exactly — for any
// up/down distributions with these means, so the formula is
// distribution-insensitive.
type Availability struct {
	// MTBF is the mean operating time between failures in seconds.
	MTBF float64
	// MeanRepair is the mean repair duration in seconds.
	MeanRepair float64
}

// Validate checks both means are positive and finite.
func (a Availability) Validate() error {
	if !(a.MTBF > 0) || math.IsInf(a.MTBF, 1) {
		return fmt.Errorf("analytic: MTBF %v must be positive and finite", a.MTBF)
	}
	if !(a.MeanRepair > 0) || math.IsInf(a.MeanRepair, 1) {
		return fmt.Errorf("analytic: mean repair %v must be positive and finite", a.MeanRepair)
	}
	return nil
}

// Value returns the long-run availability MTBF/(MTBF + MeanRepair).
func (a Availability) Value() float64 { return a.MTBF / (a.MTBF + a.MeanRepair) }

// AppliesTo requires fault injection to be active; the formula holds for
// every arrival law, service law, and policy because the fault clock is
// independent of the workload.
func (a Availability) AppliesTo(r Regime) error {
	if !r.Faults {
		return fmt.Errorf("analytic: availability oracle needs fault injection active")
	}
	return nil
}
