// The top rung of the ladder: the exact optimal long-run average cost of
// the slotted power-managed system, computed two independent ways and
// cross-checked. It is not a closed form — it is the solution of the
// average-cost MDP — but it plays the same role as one: a bound no
// simulated policy may beat, and a target the simulated optimal policy
// must hit.
package analytic

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/mdp"
	"repro/internal/stochpm"
)

// OptimalCost is the optimal long-run average cost per slot of a slotted
// DPM instance, with the solver cross-check diagnostics.
type OptimalCost struct {
	// Gain is the optimal average cost per slot (energy + weighted
	// backlog), from relative value iteration.
	Gain float64
	// LPGain is the same quantity from the occupancy-measure LP; the two
	// agree within CrossTol by construction.
	LPGain float64
	// Regime is the slotted configuration the bound covers.
	Regime Regime
}

// CrossTol is the maximum RVI-vs-LP disagreement SolveOptimalCost
// tolerates: both solve the same finite problem, so anything larger
// signals a solver bug, not statistical noise.
const CrossTol = 1e-6

// SolveOptimalCost computes the optimal average cost of the slotted
// system (Bernoulli(arrivalP) arrivals, queue capacity queueCap counting
// the request in service, scalarization weight latencyWeight) by relative
// value iteration, cross-checks it against the independent
// occupancy-measure LP from internal/stochpm, and returns both. Because
// the MDP is generated from the same device description and slot
// semantics as internal/slotsim, the bound is exact for the simulator,
// not an approximation:
//
//	every stationary policy's simulated AvgCost ≥ Gain  (up to CI noise)
//	the policy.NewOptimal policy's simulated AvgCost  = Gain (within CI)
func SolveOptimalCost(dev *device.Slotted, arrivalP float64, queueCap int, latencyWeight float64) (*OptimalCost, error) {
	d, err := mdp.BuildDPM(mdp.DPMConfig{
		Device:        dev,
		ArrivalP:      arrivalP,
		QueueCap:      queueCap,
		LatencyWeight: latencyWeight,
	})
	if err != nil {
		return nil, err
	}
	res, err := d.AverageCostRVI(1e-9, 500000)
	if err != nil {
		return nil, err
	}
	sol, err := stochpm.SolveLP(d, nil)
	if err != nil {
		return nil, fmt.Errorf("analytic: LP cross-check failed: %w", err)
	}
	if diff := math.Abs(res.Gain - sol.Gain); diff > CrossTol {
		return nil, fmt.Errorf("analytic: RVI gain %v and LP gain %v disagree by %v (> %v)", res.Gain, sol.Gain, diff, CrossTol)
	}
	return &OptimalCost{
		Gain:   res.Gain,
		LPGain: sol.Gain,
		Regime: Regime{
			Arrivals:  ArrivalBernoulli,
			Service:   ServiceDeterministic,
			Policy:    PolicyOptimal,
			SystemCap: queueCap,
		},
	}, nil
}

// AppliesTo accepts the exact slotted regime the MDP models: Bernoulli
// arrivals, deterministic slot service, the matching queue bound, and no
// faults. The Gain is a valid lower bound for ANY stationary policy in
// that regime; Regime.Policy == PolicyOptimal additionally promises the
// bound is attained.
func (o *OptimalCost) AppliesTo(r Regime) error {
	if r.Arrivals != ArrivalBernoulli {
		return fmt.Errorf("analytic: optimal-cost bound needs %s arrivals, regime has %q", ArrivalBernoulli, r.Arrivals)
	}
	if r.Service != ServiceDeterministic {
		return fmt.Errorf("analytic: optimal-cost bound needs %s slot service, regime has %q", ServiceDeterministic, r.Service)
	}
	if r.SystemCap != o.Regime.SystemCap {
		return fmt.Errorf("analytic: optimal-cost bound solved at capacity %d, regime caps the system at %d", o.Regime.SystemCap, r.SystemCap)
	}
	if r.Faults {
		return fmt.Errorf("analytic: optimal-cost bound does not model faults")
	}
	return nil
}
