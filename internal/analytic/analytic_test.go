package analytic

import (
	"math"
	"testing"

	"repro/internal/device"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.9f, want %.9f (tol %g)", name, got, want, tol)
	}
}

func TestMM1KnownValues(t *testing.T) {
	// λ=0.8, μ=2: ρ=0.4, W = 1/(μ−λ) = 1/1.2.
	q, err := NewMM1(0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "rho", q.Rho(), 0.4, 1e-12)
	almost(t, "W", q.MeanSojourn(), 1/1.2, 1e-12)
	// Wq = W − 1/μ.
	almost(t, "Wq", q.MeanWait(), 1/1.2-0.5, 1e-12)
	// L = ρ/(1−ρ) for M/M/1.
	almost(t, "L", q.MeanNumber(), 0.4/0.6, 1e-12)
}

func TestMD1KnownValues(t *testing.T) {
	// λ=0.8, s=0.5: ρ=0.4, Wq = λs²/(2(1−ρ)) = 0.2/1.2.
	q, err := NewMD1(0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "Wq", q.MeanWait(), 0.2/1.2, 1e-12)
	almost(t, "W", q.MeanSojourn(), 0.2/1.2+0.5, 1e-12)
	// At equal ρ, M/D/1 queues exactly half the M/M/1 wait.
	mm1, err := NewMM1(0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "Wq ratio", q.MeanWait()/mm1.MeanWait(), 0.5, 1e-12)
}

func TestMG1Validate(t *testing.T) {
	cases := []MG1{
		{Lambda: 0, MeanS: 0.5, MeanS2: 0.25},   // zero rate
		{Lambda: 2.1, MeanS: 0.5, MeanS2: 0.25}, // ρ > 1
		{Lambda: 2, MeanS: 0.5, MeanS2: 0.25},   // ρ = 1
		{Lambda: 0.5, MeanS: 0.5, MeanS2: 0.1},  // E[S²] < E[S]²
		{Lambda: 0.5, MeanS: -1, MeanS2: 2},     // negative service
	}
	for _, q := range cases {
		if err := q.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid oracle", q)
		}
	}
}

func TestMG1AppliesTo(t *testing.T) {
	md1, err := NewMD1(0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ok := Regime{Arrivals: ArrivalPoisson, Service: ServiceDeterministic, Policy: PolicyAlwaysOn}
	if err := md1.AppliesTo(ok); err != nil {
		t.Errorf("M/D/1 rejected its own regime: %v", err)
	}
	for name, r := range map[string]Regime{
		"bernoulli arrivals": {Arrivals: ArrivalBernoulli, Service: ServiceDeterministic, Policy: PolicyAlwaysOn},
		"wrong service law":  {Arrivals: ArrivalPoisson, Service: ServiceExponential, Policy: PolicyAlwaysOn},
		"sleeping policy":    {Arrivals: ArrivalPoisson, Service: ServiceDeterministic, Policy: PolicySleepCycle},
		"bounded queue":      {Arrivals: ArrivalPoisson, Service: ServiceDeterministic, Policy: PolicyAlwaysOn, SystemCap: 8},
		"faults":             {Arrivals: ArrivalPoisson, Service: ServiceDeterministic, Policy: PolicyAlwaysOn, Faults: true},
	} {
		if err := md1.AppliesTo(r); err == nil {
			t.Errorf("M/D/1 accepted regime with %s", name)
		}
	}
	mm1, err := NewMM1(0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := mm1.AppliesTo(Regime{Arrivals: ArrivalPoisson, Service: ServiceExponential, Policy: PolicyAlwaysOn}); err != nil {
		t.Errorf("M/M/1 rejected its own regime: %v", err)
	}
}

func TestMM1KBlocking(t *testing.T) {
	// λ=1.6, μ=2, K=8: ρ=0.8, p_K = (1−ρ)ρ^K/(1−ρ^(K+1)).
	q := MM1K{Lambda: 1.6, Mu: 2, K: 8}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	rho := 0.8
	want := (1 - rho) * math.Pow(rho, 8) / (1 - math.Pow(rho, 9))
	almost(t, "pK", q.BlockingProb(), want, 1e-12)

	// Probabilities over 0..K must sum to 1.
	sum := 0.0
	for n := 0; n <= q.K; n++ {
		sum += q.prob(n)
	}
	almost(t, "Σp", sum, 1, 1e-12)

	// ρ = 1 degenerates to the uniform distribution: p_K = 1/(K+1).
	crit := MM1K{Lambda: 2, Mu: 2, K: 8}
	almost(t, "pK at rho=1", crit.BlockingProb(), 1.0/9, 1e-12)

	// K=1 is the Erlang loss system M/M/1/1: p_1 = ρ/(1+ρ).
	one := MM1K{Lambda: 1.6, Mu: 2, K: 1}
	almost(t, "pK at K=1", one.BlockingProb(), rho/(1+rho), 1e-12)
}

func TestMM1KLimitsToMM1(t *testing.T) {
	// As K grows with ρ < 1, blocking vanishes and L approaches ρ/(1−ρ).
	q := MM1K{Lambda: 0.8, Mu: 2, K: 60}
	if q.BlockingProb() > 1e-20 {
		t.Errorf("pK = %g at K=60, want ~0", q.BlockingProb())
	}
	almost(t, "L limit", q.MeanNumber(), 0.4/0.6, 1e-9)
	mm1, err := NewMM1(0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "W limit", q.MeanSojourn(), mm1.MeanSojourn(), 1e-9)
}

// TestSleepCycleWorkedExample pins the oracle to the hand-derived value
// for the synthetic3 device (docs/ANALYTIC.md rung 3 works the numbers).
func TestSleepCycleWorkedExample(t *testing.T) {
	c := synthetic3SleepCycle(0.4)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// e^{−0.2}=0.81873075…; E[sleep]=2.04682688; E[T_pre]=4.04682688;
	// E[N₀]=1.61873075; E[B]=1.01170672; E[C]=5.05853360;
	// E[energy]=0.3+2.5+0.20468269+2.02341344=5.02809613.
	almost(t, "E[C]", c.MeanCycle(), 5.05853360, 1e-7)
	almost(t, "power", c.MeanPower(), 0.99398294, 1e-7)
}

// synthetic3SleepCycle builds the oracle from the catalog synthetic3
// parameters (active 2 W serving 0.5 s, deep 0.1 W, down 0.5 s/0.3 J,
// up 1.5 s/2.5 J) at arrival rate lambda.
func synthetic3SleepCycle(lambda float64) SleepCycle {
	return SleepCycle{
		Lambda:      lambda,
		ServiceTime: 0.5,
		DownLatency: 0.5, DownEnergy: 0.3,
		UpLatency: 1.5, UpEnergy: 2.5,
		SleepPower: 0.1, ActivePower: 2.0,
	}
}

func TestSleepCycleLimits(t *testing.T) {
	// With free, instant transitions the cycle is sleep (1/λ) + busy
	// (s/(1−ρ)), i.e. the classic on-demand server: power =
	// (P_sleep + P_active·λs/(1−λs)) / (1 + λs/(1−λs)) … computed directly.
	c := SleepCycle{
		Lambda: 0.4, ServiceTime: 0.5,
		SleepPower: 0.1, ActivePower: 2.0,
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	sleep := 1 / 0.4
	busy := 0.5 / (1 - 0.2)
	want := (0.1*sleep + 2.0*busy) / (sleep + busy)
	almost(t, "free-transition power", c.MeanPower(), want, 1e-12)

	// Timeout above the service time must be rejected.
	bad := synthetic3SleepCycle(0.4)
	bad.Timeout = 0.6
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted timeout > service time")
	}
	// ρ ≥ 1 must be rejected.
	sat := synthetic3SleepCycle(2.5)
	if err := sat.Validate(); err == nil {
		t.Error("Validate accepted an unstable sleep cycle")
	}
}

func TestSleepCycleAppliesTo(t *testing.T) {
	c := synthetic3SleepCycle(0.4)
	ok := Regime{Arrivals: ArrivalPoisson, Service: ServiceDeterministic, Policy: PolicySleepCycle}
	if err := c.AppliesTo(ok); err != nil {
		t.Errorf("sleep cycle rejected its own regime: %v", err)
	}
	withTimeout := c
	withTimeout.Timeout = 0.4
	okT := ok
	okT.Timeout = 0.4
	if err := withTimeout.AppliesTo(okT); err != nil {
		t.Errorf("sleep cycle rejected matching timeout regime: %v", err)
	}
	if err := withTimeout.AppliesTo(ok); err == nil {
		t.Error("sleep cycle accepted a regime with a different threshold")
	}
	alwaysOn := ok
	alwaysOn.Policy = PolicyAlwaysOn
	if err := c.AppliesTo(alwaysOn); err == nil {
		t.Error("sleep cycle accepted the always-on policy")
	}
}

func TestAvailability(t *testing.T) {
	a := Availability{MTBF: 100, MeanRepair: 10}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	almost(t, "A", a.Value(), 10.0/11, 1e-12)
	if err := a.AppliesTo(Regime{Faults: true}); err != nil {
		t.Errorf("availability rejected a faulted regime: %v", err)
	}
	if err := a.AppliesTo(Regime{}); err == nil {
		t.Error("availability accepted a fault-free regime")
	}
	if err := (Availability{MTBF: 0, MeanRepair: 1}).Validate(); err == nil {
		t.Error("Validate accepted zero MTBF")
	}
}

func TestSolveOptimalCostCrossCheck(t *testing.T) {
	dev, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	o, err := SolveOptimalCost(dev, 0.3, 8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.Gain-o.LPGain) > CrossTol {
		t.Errorf("RVI gain %v vs LP gain %v beyond CrossTol", o.Gain, o.LPGain)
	}
	// The optimal gain can never exceed the always-on cost (always-on is
	// one feasible stationary policy): energy 2·0.5 = 1 J/slot plus a
	// nonnegative backlog term.
	if o.Gain <= 0 || o.Gain > 1+0.3*8 {
		t.Errorf("optimal gain %v outside plausible range", o.Gain)
	}
	ok := Regime{Arrivals: ArrivalBernoulli, Service: ServiceDeterministic, Policy: PolicyOptimal, SystemCap: 8}
	if err := o.AppliesTo(ok); err != nil {
		t.Errorf("optimal bound rejected its own regime: %v", err)
	}
	bad := ok
	bad.SystemCap = 4
	if err := o.AppliesTo(bad); err == nil {
		t.Error("optimal bound accepted a mismatched queue capacity")
	}
}
