// Continuous time: generate a bursty request trace, persist it through the
// trace codec, and replay it through the event-driven simulator
// (internal/ctsim) under two power managers — the fixed timeout every OS
// ships and the Q-DPM learner.
//
//	go run ./examples/continuous
//	go run ./examples/continuous -rate 0.5 -n 40000 -replicas 4
//
// This is the workflow the slot grid cannot express: arrivals land at
// real-valued instants (a high-variance hyperexponential renewal process
// standing in for a measured log), the device's wakeup latency is its
// physical 1.5 s, and every policy replays the exact same trace, so the
// comparison is paired. Replace the generated trace with a measured one
// (qdpm-trace convert) without touching any simulator code.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	var (
		n        = flag.Int("n", 20000, "requests in the generated trace")
		rate     = flag.Float64("rate", 0.2, "arrival rate in requests per second")
		seed     = flag.Uint64("seed", 42, "base seed (trace and replica seeds derive from it)")
		replicas = flag.Int("replicas", 2, "independent replicas to pool (policy streams differ; the trace is shared)")
		parallel = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	// 1. Generate a high-variance arrival trace: hyperexponential
	//    interarrivals (CV ≈ 1.24) calibrated to exactly -rate requests/s.
	d, err := dist.ByName("hyperexp", *rate)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.Generate(d, *n, rng.New(*seed))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Round-trip it through the on-disk codec — the artifact another
	//    experiment (or another tool) would replay.
	path := filepath.Join(os.TempDir(), fmt.Sprintf("qdpm-continuous-%d.txt", *seed))
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteText(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	defer os.Remove(path)
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	replay, err := trace.ReadText(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	st := replay.Summary()
	fmt.Printf("trace         %d requests over %.0f s (rate %.3f/s, CV %.2f) via %s\n",
		st.Count, st.Duration, 1/st.MeanInterarrival, st.CV, path)

	// 3. A continuous-time scenario: the synthetic 3-state device with its
	//    physical latencies, the canonical governor period for the
	//    adapted slotted policies, and the replayed trace as the source.
	psm := device.Synthetic3()
	dev, err := experiment.CanonDevice()
	if err != nil {
		log.Fatal(err)
	}
	sc := experiment.CTScenario{
		Name:          "continuous",
		Device:        psm,
		QueueCap:      experiment.CanonQueueCap,
		LatencyWeight: experiment.CanonLatencyWeight / experiment.CanonSlotSeconds,
		Horizon:       st.Duration + 10,
		Period:        experiment.CanonSlotSeconds,
		Source: func() ctsim.Source {
			src, err := ctsim.NewTraceSource(replay)
			if err != nil {
				panic(err)
			}
			return src
		},
	}

	// 4. Pooled paired replicas of each policy over the same trace.
	seeds := engine.DeriveSeeds(*seed, *replicas)
	par := experiment.Parallel{Workers: *parallel}
	maxPower := psm.MaxPower()
	for _, pf := range []experiment.PolicyFactory{
		experiment.TimeoutFactory(dev, 8),
		experiment.QDPMFactory(dev),
	} {
		sum, err := experiment.RunCTReplicatedCtx(context.Background(), sc, pf, seeds, par)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %.4f ± %.4f W (%.1f%% saved vs always-on), %.2f s mean wait, %.2f%% lost\n",
			sum.Policy+":", sum.AvgPowerW.Mean(), sum.AvgPowerW.CI95(),
			100*sum.EnergyReduction.Mean(), sum.MeanWaitSec.Mean(), 100*sum.LossRate.Mean())
	}
	fmt.Printf("always-on     %.4f W reference\n", maxPower)
}
