// Disk power management: a laptop HDD under bursty (on/off) access,
// comparing Q-DPM against the timeout policy an OS would ship and the
// immediate-shutdown policy.
//
//	go run ./examples/disk
//	go run ./examples/disk -replicas 8 -parallel 4
//
// The disk's spin-up penalty (seconds, joules) makes premature shutdown
// expensive, and the bursty workload makes any fixed timeout wrong part of
// the time — the setting where learned policies earn their keep. The five
// policies fan out across the experiment engine's worker pool; the pooled
// numbers are bit-identical for every -parallel value.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/policy"
	"repro/internal/qlearn"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/stats"
	"repro/internal/workload"
)

const (
	slotSeconds = 0.5
	queueCap    = 16
	latencyW    = 0.3
)

func main() {
	var (
		slots    = flag.Int64("slots", 300000, "slots per replica")
		replicas = flag.Int("replicas", 1, "independent replicas to pool")
		parallel = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 99, "base seed")
	)
	flag.Parse()

	dev, err := device.HDD().Slot(slotSeconds)
	if err != nil {
		log.Fatal(err)
	}

	// Bursty access: request bursts (p=0.7/slot) averaging 100 slots,
	// separated by quiet periods averaging 400 slots.
	sc := experiment.Scenario{
		Name:          "disk",
		Device:        dev,
		QueueCap:      queueCap,
		LatencyWeight: latencyW,
		Slots:         *slots,
		Workload: func() workload.Arrivals {
			arr, err := workload.NewOnOff(0.7, 100, 400)
			if err != nil {
				panic(err)
			}
			return arr
		},
	}

	qdpm := experiment.PolicyFactory{
		Name: "q-dpm",
		New: func(stream *rng.Stream) (slotsim.Policy, error) {
			return core.New(core.Config{
				Device:        dev,
				QueueCap:      queueCap,
				LatencyWeight: latencyW,
				QueueBuckets:  6,                     // coarse queue keeps the table small
				IdleBuckets:   []int64{2, 8, 16, 48}, // idle thresholds bracket the break-even
				Explore:       qlearn.EpsGreedy{Eps: 0.25, MinEps: 0.002, DecayTau: 40000},
				Alpha:         qlearn.Polynomial{Scale: 0.5, Omega: 0.65},
				Stream:        stream,
			})
		},
	}
	adaptive := experiment.PolicyFactory{
		Name: "adaptive-timeout",
		New: func(*rng.Stream) (slotsim.Policy, error) {
			return policy.NewAdaptiveTimeout(dev, 16, 2, 256)
		},
	}
	pfs := []experiment.PolicyFactory{
		experiment.AlwaysOnFactory(dev),
		experiment.GreedyOffFactory(dev),
		experiment.TimeoutFactory(dev, 16), // 8 s timeout
		adaptive,
		qdpm,
	}

	// One pool job per policy; each job runs its replicas in seed order,
	// so the table is deterministic for every -parallel value. This is
	// the raw engine API — the experiment drivers build the same shape.
	type row struct {
		name        string
		power, wait stats.Running
		commands    int64
	}
	seeds := engine.DeriveSeeds(*seed, *replicas)
	rows, err := engine.Map(context.Background(), &engine.Pool{Workers: *parallel}, len(pfs),
		func(ctx context.Context, i int) (row, error) {
			pf := pfs[i]
			r := row{name: pf.Name}
			for ri, s := range seeds {
				m, err := experiment.RunOneCtx(ctx, sc, pf, s, nil)
				if err != nil {
					return row{}, err
				}
				r.power.Add(m.AvgPowerW(slotSeconds))
				r.wait.Add(m.MeanWaitSlots())
				if ri == 0 {
					r.commands = m.Commands // counter from the reference replica
				}
			}
			return r, nil
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HDD under on/off bursts, %d slots of %.1fs, %d replica(s):\n\n", *slots, slotSeconds, *replicas)
	fmt.Printf("%-18s %10s %12s %10s\n", "policy", "power (W)", "wait (slots)", "spin-ups")
	for _, r := range rows {
		fmt.Printf("%-18s %10.4f %12.3f %10d\n", r.name, r.power.Mean(), r.wait.Mean(), r.commands)
	}
	fmt.Println("\nNote the honest result: on stationary bimodal bursts a well-tuned")
	fmt.Println("timeout is hard to beat — it encodes the disk's break-even directly.")
	fmt.Println("Q-DPM reaches ~80% of always-on savings with zero device knowledge,")
	fmt.Println("and its edge appears when the workload drifts (run examples/nonstationary).")
}
