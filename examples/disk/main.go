// Disk power management: a laptop HDD under bursty (on/off) access,
// comparing Q-DPM against the timeout policy an OS would ship and the
// immediate-shutdown policy.
//
//	go run ./examples/disk
//
// The disk's spin-up penalty (seconds, joules) makes premature shutdown
// expensive, and the bursty workload makes any fixed timeout wrong part of
// the time — the setting where learned policies earn their keep.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/qlearn"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/workload"
)

const (
	slotSeconds = 0.5
	queueCap    = 16
	latencyW    = 0.3
	slots       = 300000
)

func run(name string, dev *device.Slotted, pol slotsim.Policy, seed uint64) slotsim.Metrics {
	// Bursty access: request bursts (p=0.7/slot) averaging 100 slots,
	// separated by quiet periods averaging 400 slots.
	arr, err := workload.NewOnOff(0.7, 100, 400)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := slotsim.New(slotsim.Config{
		Device:        dev,
		Arrivals:      arr,
		QueueCap:      queueCap,
		Policy:        pol,
		Stream:        rng.New(seed),
		LatencyWeight: latencyW,
	})
	if err != nil {
		log.Fatal(err)
	}
	m, err := sim.Run(slots, nil)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	dev, err := device.HDD().Slot(slotSeconds)
	if err != nil {
		log.Fatal(err)
	}

	qdpm, err := core.New(core.Config{
		Device:        dev,
		QueueCap:      queueCap,
		LatencyWeight: latencyW,
		QueueBuckets:  6,                     // coarse queue keeps the table small
		IdleBuckets:   []int64{2, 8, 16, 48}, // idle thresholds bracket the break-even
		Explore:       qlearn.EpsGreedy{Eps: 0.25, MinEps: 0.002, DecayTau: 40000},
		Alpha:         qlearn.Polynomial{Scale: 0.5, Omega: 0.65},
		Stream:        rng.New(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	timeout, err := policy.NewFixedTimeout(dev, 16) // 8 s timeout
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := policy.NewGreedyOff(dev)
	if err != nil {
		log.Fatal(err)
	}
	alwaysOn, err := policy.NewAlwaysOn(dev)
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := policy.NewAdaptiveTimeout(dev, 16, 2, 256)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HDD under on/off bursts, %d slots of %.1fs:\n\n", slots, slotSeconds)
	fmt.Printf("%-18s %10s %12s %10s\n", "policy", "power (W)", "wait (slots)", "spin-ups")
	for _, tc := range []struct {
		name string
		pol  slotsim.Policy
	}{
		{"always-on", alwaysOn},
		{"greedy-off", greedy},
		{"timeout-16", timeout},
		{"adaptive-timeout", adaptive},
		{"q-dpm", qdpm},
	} {
		m := run(tc.name, dev, tc.pol, 99)
		fmt.Printf("%-18s %10.4f %12.3f %10d\n",
			tc.name, m.AvgPowerW(slotSeconds), m.MeanWaitSlots(), m.Commands)
	}
	fmt.Println("\nNote the honest result: on stationary bimodal bursts a well-tuned")
	fmt.Println("timeout is hard to beat — it encodes the disk's break-even directly.")
	fmt.Println("Q-DPM reaches ~80% of always-on savings with zero device knowledge")
	fmt.Printf("and a %d-byte table; its edge appears when the workload drifts\n", qdpm.TableBytes())
	fmt.Println("(run examples/nonstationary).")
}
