// Quickstart: manage a synthetic 3-state device with Q-DPM and compare the
// learned behaviour against never powering down.
//
//	go run ./examples/quickstart
//
// This is the smallest end-to-end use of the library: build a device,
// pick a workload, attach the learning power manager, simulate, read the
// metrics.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/workload"
)

func main() {
	// 1. A power-managed device: active/idle/sleep with a 3-slot, 2.5 J
	//    wakeup penalty, discretized to 0.5 s slots.
	dev, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A workload: one request with probability 0.1 per slot.
	arrivals, err := workload.NewBernoulli(0.1)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The Q-DPM power manager. Defaults: Watkins Q-learning, ε-greedy
	//    exploration, constant learning rate.
	manager, err := core.New(core.Config{
		Device:        dev,
		QueueCap:      8,
		LatencyWeight: 0.3, // joules per queued request per slot
		Stream:        rng.New(42),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Simulate 200k slots (~28 simulated hours).
	sim, err := slotsim.New(slotsim.Config{
		Device:        dev,
		Arrivals:      arrivals,
		QueueCap:      8,
		Policy:        manager,
		Stream:        rng.New(7),
		LatencyWeight: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	m, err := sim.Run(200000, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Baseline: the same system that never powers down.
	alwaysOn, err := policy.NewAlwaysOn(dev)
	if err != nil {
		log.Fatal(err)
	}
	simAO, err := slotsim.New(slotsim.Config{
		Device:        dev,
		Arrivals:      arrivals.Clone(),
		QueueCap:      8,
		Policy:        alwaysOn,
		Stream:        rng.New(7),
		LatencyWeight: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	mAO, err := simAO.Run(200000, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Q-DPM:     %.4f W average, %.3f-slot mean wait\n",
		m.AvgPowerW(dev.SlotDuration), m.MeanWaitSlots())
	fmt.Printf("always-on: %.4f W average, %.3f-slot mean wait\n",
		mAO.AvgPowerW(dev.SlotDuration), mAO.MeanWaitSlots())
	fmt.Printf("energy reduction: %.1f%%\n",
		100*(1-m.EnergyJ/mAO.EnergyJ))
	fmt.Printf("Q table: %d bytes for %d states — small enough for any microcontroller\n",
		manager.TableBytes(), manager.NumStates())
}
