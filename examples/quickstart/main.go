// Quickstart: manage a synthetic 3-state device with Q-DPM and compare the
// learned behaviour against never powering down.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -replicas 8 -parallel 4 -seed 42
//
// This is the smallest end-to-end use of the library: build a device,
// pick a workload, describe the scenario, and let the experiment engine
// run pooled replicas of each policy. With -replicas 1 (the default) it
// is a single deterministic run; more replicas add 95% confidence
// intervals, fanned across -parallel workers.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/workload"
)

func main() {
	var (
		slots    = flag.Int64("slots", 200000, "slots per replica (~28 simulated hours)")
		replicas = flag.Int("replicas", 1, "independent replicas to pool")
		parallel = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 42, "base seed (replica seeds derive from it)")
	)
	flag.Parse()

	// 1. A power-managed device: active/idle/sleep with a 3-slot, 2.5 J
	//    wakeup penalty, discretized to 0.5 s slots.
	dev, err := experiment.CanonDevice()
	if err != nil {
		log.Fatal(err)
	}

	// 2. A scenario: the device under one request with probability 0.1
	//    per slot, backlog weighed at 0.3 J per request-slot.
	sc := experiment.Scenario{
		Name:          "quickstart",
		Device:        dev,
		QueueCap:      8,
		LatencyWeight: 0.3,
		Slots:         *slots,
		Workload: func() workload.Arrivals {
			b, err := workload.NewBernoulli(0.1)
			if err != nil {
				panic(err)
			}
			return b
		},
	}

	// 3. Two policies: the Q-DPM power manager (defaults: Watkins
	//    Q-learning, ε-greedy exploration) and the always-on baseline.
	qdpm := experiment.PolicyFactory{
		Name: "q-dpm",
		New: func(stream *rng.Stream) (slotsim.Policy, error) {
			return core.New(core.Config{
				Device:        dev,
				QueueCap:      8,
				LatencyWeight: 0.3,
				Stream:        stream,
			})
		},
	}
	alwaysOn := experiment.AlwaysOnFactory(dev)

	// 4. Replicated runs on the worker pool. Seeds derive from the base
	//    seed, so the output is reproducible for any -parallel value.
	seeds := engine.DeriveSeeds(*seed, *replicas)
	par := experiment.Parallel{Workers: *parallel}
	var sums []*experiment.Summary
	for _, pf := range []experiment.PolicyFactory{qdpm, alwaysOn} {
		sum, err := experiment.RunReplicatedCtx(context.Background(), sc, pf, seeds, par)
		if err != nil {
			log.Fatal(err)
		}
		sums = append(sums, sum)
	}

	// 5. Read the pooled metrics.
	for _, sum := range sums {
		fmt.Printf("%-10s %.4f ± %.4f W average, %.3f-slot mean wait\n",
			sum.Policy+":", sum.AvgPowerW.Mean(), sum.AvgPowerW.CI95(), sum.MeanWaitSlots.Mean())
	}
	fmt.Printf("energy reduction: %.1f%%\n",
		100*(1-sums[0].AvgPowerW.Mean()/sums[1].AvgPowerW.Mean()))
}
