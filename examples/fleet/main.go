// Fleet scale: simulate thousands of heterogeneous power-managed devices
// — laptop disks, WLAN NICs, sensor radios, and the paper's synthetic
// device, each population under its own workload and policy — sharded
// across the worker pool, and compare a hand-tuned mix against the
// canonical one.
//
//	go run ./examples/fleet
//	go run ./examples/fleet -devices 10000 -horizon 600
//
// The walkthrough builds the same fleet three ways to show the layering:
//  1. fleet.Run — the raw subsystem: spec in, merged summary out.
//  2. experiment.RunFleetReplicatedCtx — seed-replicated fleets with
//     pooled confidence intervals.
//  3. A custom mix via fleet.ParseMix, the string format qdpm-fleet's
//     -mix flag accepts.
//
// Every run is deterministic: the summary is bit-identical for every
// -parallel value, because shards are a pure function of the spec and
// merge in shard-index order.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/fleet"
)

func main() {
	var (
		devices  = flag.Int("devices", 2000, "fleet size in device instances")
		horizon  = flag.Float64("horizon", 300, "per-instance horizon in seconds")
		seed     = flag.Uint64("seed", 7, "base seed")
		parallel = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()
	ctx := context.Background()

	// 1. The raw fleet subsystem: the canonical heterogeneous mix on the
	//    continuous-time kernel. Instances are assigned to classes by
	//    weighted round-robin and sharded across the pool; each worker
	//    reuses one simulator, so steady state allocates nothing per event.
	spec := fleet.Spec{
		Devices: *devices,
		Classes: fleet.DefaultMix(),
		Mode:    fleet.ModeCT,
		Horizon: *horizon,
		Seed:    *seed,
	}
	start := time.Now()
	sum, err := fleet.Run(ctx, spec, &engine.Pool{Workers: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("== fleet.Run: %s\n", sum)
	p50, _ := sum.WaitQuantile(0.50)
	p99, _ := sum.WaitQuantile(0.99)
	fmt.Printf("   %d shards, %d events, wait p50/p99 = %.3f/%.3f s, %.0f devices/s wall-clock\n\n",
		sum.Shards, sum.Events, p50, p99, float64(sum.Devices)/elapsed.Seconds())

	// 2. Seed-replicated fleets through the experiment layer: the same
	//    spec re-run under derived seeds, pooled with 95% confidence
	//    intervals over the replica-level fleet means.
	sc := experiment.FleetScenario{Name: "canonical-fleet", Spec: spec}
	rep, err := experiment.RunFleetReplicatedCtx(ctx, sc, engine.DeriveSeeds(*seed, 3),
		experiment.Parallel{Workers: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== 3 replicas: power %.4f ± %.4f W, energy reduction %.1f%%, loss %.2f%%\n\n",
		rep.AvgPowerW.Mean(), rep.AvgPowerW.CI95(),
		100*rep.EnergyReduction.Mean(), 100*rep.LossRate.Mean())

	// 3. A custom mix in qdpm-fleet's -mix syntax: an all-disk fleet
	//    split between the fixed timeout and the Q-DPM learner — the
	//    head-to-head the paper runs, at fleet scale.
	classes, err := fleet.ParseMix("hdd:exp:0.08:timeout=8,hdd:exp:0.08:q-dpm")
	if err != nil {
		log.Fatal(err)
	}
	duel := spec
	duel.Classes = classes
	dsum, err := fleet.Run(ctx, duel, &engine.Pool{Workers: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== timeout vs q-dpm on an all-hdd fleet:")
	for _, g := range dsum.PerPolicy() {
		fmt.Printf("   %-10s %5d instances  %.4f W  (energy reduction %.1f%%)\n",
			g.Policy, g.Instances, g.AvgPowerW.Mean(), 100*g.EnergyReduction.Mean())
	}
}
