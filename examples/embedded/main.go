// Embedded sensor node — the deployment the paper motivates: a sensor
// radio managed by Q-DPM on a node with kilobytes of RAM. This example
// reports exactly what would have to fit on the microcontroller: the Q
// table, the per-decision work, and what that buys in battery life.
//
//	go run ./examples/embedded
//	go run ./examples/embedded -slots 200000 -seed 5
//
// The per-slot timing is a wall-clock measurement, so the runs execute
// serially — concurrent simulation would corrupt the reported
// nanoseconds per slot (the same rule Table R1 follows).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiment"
	"repro/internal/qlearn"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/workload"
)

const (
	slotSeconds = 0.05 // 50 ms slots
	queueCap    = 4
	latencyW    = 0.002 // joule-scale of the radio is mW·s
)

func main() {
	var (
		slots = flag.Int64("slots", 500000, "slots per run")
		seed  = flag.Uint64("seed", 5, "rng seed")
	)
	flag.Parse()

	dev, err := device.SensorRadio().Slot(slotSeconds)
	if err != nil {
		log.Fatal(err)
	}

	// Sensor traffic: rare bursts (events) over a quiet background.
	sc := experiment.Scenario{
		Name:          "embedded",
		Device:        dev,
		QueueCap:      queueCap,
		LatencyWeight: latencyW,
		Slots:         *slots,
		Workload: func() workload.Arrivals {
			arr, err := workload.NewOnOff(0.6, 40, 2000)
			if err != nil {
				panic(err)
			}
			return arr
		},
	}

	var mgr *core.Manager
	qdpm := experiment.PolicyFactory{
		Name: "q-dpm",
		New: func(stream *rng.Stream) (slotsim.Policy, error) {
			m, err := core.New(core.Config{
				Device:        dev,
				QueueCap:      queueCap,
				QueueBuckets:  3, // coarse buckets: smaller table, same policy
				LatencyWeight: latencyW,
				Alpha:         qlearn.Constant{C: 0.1},
				Explore:       qlearn.EpsGreedy{Eps: 0.04},
				Stream:        stream,
			})
			mgr = m
			return m, err
		},
	}

	// The per-slot timing is a wall-clock measurement, so the Q-DPM run
	// gets the machine to itself; the baseline runs afterwards (same
	// rule as Table R1 — concurrent simulation work would corrupt the
	// nanoseconds-per-slot figure).
	start := time.Now()
	m, err := experiment.RunOne(sc, qdpm, *seed, nil)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	mAO, err := experiment.RunOne(sc, experiment.AlwaysOnFactory(dev), *seed, nil)
	if err != nil {
		log.Fatal(err)
	}

	const batteryJ = 2 * 3600 * 3.0 * 0.25 // 2×AA alkaline, 25% to the radio

	fmt.Println("sensor-node radio under Q-DPM:")
	fmt.Printf("  table size        %d bytes (%d states × %d actions)\n",
		mgr.TableBytes(), mgr.NumStates(), dev.PSM.NumStates())
	fmt.Printf("  per-slot work     %.0f ns on this host (argmax + one update)\n",
		float64(elapsed.Nanoseconds())/float64(*slots))
	fmt.Printf("  avg radio power   %.3f mW (always-on %.3f mW)\n",
		1000*m.AvgPowerW(slotSeconds), 1000*mAO.AvgPowerW(slotSeconds))
	fmt.Printf("  energy reduction  %.1f%%\n", 100*(1-m.EnergyJ/mAO.EnergyJ))
	fmt.Printf("  event latency     %.1f ms mean\n", 1000*m.MeanWaitSlots()*slotSeconds)
	fmt.Printf("  radio budget life %.0f days vs %.0f days always-on\n",
		batteryJ/m.EnergyJ*float64(*slots)*slotSeconds/86400,
		batteryJ/mAO.EnergyJ*float64(*slots)*slotSeconds/86400)
}
