// Embedded sensor node — the deployment the paper motivates: a sensor
// radio managed by Q-DPM on a node with kilobytes of RAM. This example
// reports exactly what would have to fit on the microcontroller: the Q
// table, the per-decision work, and what that buys in battery life.
//
//	go run ./examples/embedded
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/qlearn"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/workload"
)

const (
	slotSeconds = 0.05 // 50 ms slots
	queueCap    = 4
	latencyW    = 0.002 // joule-scale of the radio is mW·s
	slots       = 500000
)

func main() {
	dev, err := device.SensorRadio().Slot(slotSeconds)
	if err != nil {
		log.Fatal(err)
	}

	// Sensor traffic: rare bursts (events) over a quiet background.
	arr, err := workload.NewOnOff(0.6, 40, 2000)
	if err != nil {
		log.Fatal(err)
	}

	manager, err := core.New(core.Config{
		Device:        dev,
		QueueCap:      queueCap,
		QueueBuckets:  3, // coarse buckets: smaller table, same policy
		LatencyWeight: latencyW,
		Alpha:         qlearn.Constant{C: 0.1},
		Explore:       qlearn.EpsGreedy{Eps: 0.04},
		Stream:        rng.New(5),
	})
	if err != nil {
		log.Fatal(err)
	}

	sim, err := slotsim.New(slotsim.Config{
		Device:        dev,
		Arrivals:      arr,
		QueueCap:      queueCap,
		Policy:        manager,
		Stream:        rng.New(6),
		LatencyWeight: latencyW,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	m, err := sim.Run(slots, nil)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	alwaysOn, err := policy.NewAlwaysOn(dev)
	if err != nil {
		log.Fatal(err)
	}
	simAO, err := slotsim.New(slotsim.Config{
		Device: dev, Arrivals: arr.Clone(), QueueCap: queueCap,
		Policy: alwaysOn, Stream: rng.New(6), LatencyWeight: latencyW,
	})
	if err != nil {
		log.Fatal(err)
	}
	mAO, err := simAO.Run(slots, nil)
	if err != nil {
		log.Fatal(err)
	}

	const batteryJ = 2 * 3600 * 3.0 * 0.25 // 2×AA alkaline, 25% to the radio

	fmt.Println("sensor-node radio under Q-DPM:")
	fmt.Printf("  table size        %d bytes (%d states × %d actions)\n",
		manager.TableBytes(), manager.NumStates(), dev.PSM.NumStates())
	fmt.Printf("  per-slot work     %.0f ns on this host (argmax + one update)\n",
		float64(elapsed.Nanoseconds())/float64(slots))
	fmt.Printf("  avg radio power   %.3f mW (always-on %.3f mW)\n",
		1000*m.AvgPowerW(slotSeconds), 1000*mAO.AvgPowerW(slotSeconds))
	fmt.Printf("  energy reduction  %.1f%%\n", 100*(1-m.EnergyJ/mAO.EnergyJ))
	fmt.Printf("  event latency     %.1f ms mean\n", 1000*m.MeanWaitSlots()*slotSeconds)
	fmt.Printf("  radio budget life %.0f days vs %.0f days always-on\n",
		batteryJ/m.EnergyJ*float64(slots)*slotSeconds/86400,
		batteryJ/mAO.EnergyJ*float64(slots)*slotSeconds/86400)
}
