// WLAN power-save with a latency budget: QoS-guaranteed Q-DPM (the
// paper's "future work" extension) on an 802.11 NIC under Markov-modulated
// traffic, versus plain Q-DPM and the constrained occupancy-LP optimum.
//
//	go run ./examples/wlan
//	go run ./examples/wlan -parallel 3 -seed 17
//
// The QoS variant adapts a Lagrangian backlog multiplier online so mean
// backlog tracks a target without hand-tuning the reward weight — compare
// the backlog columns. The three policies run concurrently on the
// experiment engine's worker pool.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/mdp"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/stochpm"
	"repro/internal/workload"
)

const (
	slotSeconds = 0.1
	queueCap    = 8
	latencyW    = 0.02 // deliberately soft: QoS must do the work
	target      = 0.2  // mean-backlog budget (requests)
)

func traffic() workload.Arrivals {
	// Two-phase MMPP: busy browsing vs idle reading.
	busy, err := workload.NewBernoulli(0.5)
	if err != nil {
		log.Fatal(err)
	}
	quiet, err := workload.NewBernoulli(0.02)
	if err != nil {
		log.Fatal(err)
	}
	m, err := workload.NewMMPP(
		[]workload.Arrivals{busy, quiet},
		[][]float64{{0.995, 0.005}, {0.002, 0.998}},
		1,
	)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	var (
		slots    = flag.Int64("slots", 400000, "slots per run")
		parallel = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 17, "rng seed")
	)
	flag.Parse()

	dev, err := device.WLAN().Slot(slotSeconds)
	if err != nil {
		log.Fatal(err)
	}

	// The simulator forbids LatencyWeight == 0 without an explicit
	// override; 0.02 is soft enough that plain Q-DPM under-serves, which
	// is exactly the gap the QoS multiplier closes.
	sc := experiment.Scenario{
		Name:          "wlan",
		Device:        dev,
		QueueCap:      queueCap,
		LatencyWeight: latencyW,
		Slots:         *slots,
		Workload:      traffic,
	}

	plain := experiment.PolicyFactory{
		Name: "q-dpm (plain)",
		New: func(stream *rng.Stream) (slotsim.Policy, error) {
			return core.New(core.Config{
				Device: dev, QueueCap: queueCap, LatencyWeight: latencyW,
				Stream: stream,
			})
		},
	}
	qos := experiment.PolicyFactory{
		Name: "q-dpm (QoS)",
		New: func(stream *rng.Stream) (slotsim.Policy, error) {
			return core.New(core.Config{
				Device: dev, QueueCap: queueCap, LatencyWeight: latencyW,
				QoS:    &core.QoSConfig{TargetBacklog: target, Eta: 0.05, AdaptEvery: 1000},
				Stream: stream,
			})
		},
	}

	// The constrained model-based reference at the long-run mean rate.
	meanRate := traffic().MeanRate()
	d, err := mdp.BuildDPM(mdp.DPMConfig{
		Device: dev, ArrivalP: meanRate, QueueCap: queueCap, LatencyWeight: latencyW,
	})
	if err != nil {
		log.Fatal(err)
	}
	lpSol, err := stochpm.SolveLP(d, &stochpm.Constraint{MaxMeanBacklog: target})
	if err != nil {
		log.Fatal(err)
	}
	lp := experiment.PolicyFactory{
		Name: "constrained-lp",
		New: func(stream *rng.Stream) (slotsim.Policy, error) {
			return stochpm.NewLPPolicy(d, lpSol, stream)
		},
	}

	// One pool job per policy; qosLambda is read back from the QoS
	// replica after its run completes.
	pfs := []experiment.PolicyFactory{plain, qos, lp}
	var qosLambda float64
	type row struct {
		name                     string
		power, backlog, lossRate float64
	}
	rows, err := engine.Map(context.Background(), &engine.Pool{Workers: *parallel}, len(pfs),
		func(ctx context.Context, i int) (row, error) {
			pf := pfs[i]
			var captured *core.Manager
			wrapped := experiment.PolicyFactory{
				Name: pf.Name,
				New: func(stream *rng.Stream) (slotsim.Policy, error) {
					p, err := pf.New(stream)
					if err == nil && pf.Name == qos.Name {
						captured = p.(*core.Manager)
					}
					return p, err
				},
			}
			m, err := experiment.RunOneCtx(ctx, sc, wrapped, *seed, nil)
			if err != nil {
				return row{}, err
			}
			if captured != nil {
				qosLambda = captured.QosLambda() // job-local write; read after Map returns
			}
			return row{
				name:     pf.Name,
				power:    m.AvgPowerW(slotSeconds),
				backlog:  m.MeanBacklog(),
				lossRate: m.LossRate(),
			}, nil
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("WLAN NIC, MMPP traffic (mean rate %.3f/slot), backlog budget %.1f:\n\n", meanRate, target)
	fmt.Printf("%-16s %10s %14s %12s\n", "policy", "power (W)", "mean backlog", "loss rate")
	for _, r := range rows {
		fmt.Printf("%-16s %10.4f %14.3f %11.2f%%\n", r.name, r.power, r.backlog, 100*r.lossRate)
	}
	fmt.Printf("\nQoS multiplier settled at λ=%.3f (plain Q-DPM has none);\n", qosLambda)
	fmt.Println("the LP reference assumes the mean rate and full model knowledge.")
}
