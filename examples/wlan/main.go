// WLAN power-save with a latency budget: QoS-guaranteed Q-DPM (the
// paper's "future work" extension) on an 802.11 NIC under Markov-modulated
// traffic, versus plain Q-DPM and the constrained occupancy-LP optimum.
//
//	go run ./examples/wlan
//
// The QoS variant adapts a Lagrangian backlog multiplier online so mean
// backlog tracks a target without hand-tuning the reward weight — compare
// the backlog columns.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mdp"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/stochpm"
	"repro/internal/workload"
)

const (
	slotSeconds = 0.1
	queueCap    = 8
	slots       = 400000
	target      = 0.2 // mean-backlog budget (requests)
)

func traffic() workload.Arrivals {
	// Two-phase MMPP: busy browsing vs idle reading.
	busy, err := workload.NewBernoulli(0.5)
	if err != nil {
		log.Fatal(err)
	}
	quiet, err := workload.NewBernoulli(0.02)
	if err != nil {
		log.Fatal(err)
	}
	m, err := workload.NewMMPP(
		[]workload.Arrivals{busy, quiet},
		[][]float64{{0.995, 0.005}, {0.002, 0.998}},
		1,
	)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func simulate(pol slotsim.Policy, seed uint64) slotsim.Metrics {
	sim, err := slotsim.New(slotsim.Config{
		Device:                 mustDev(),
		Arrivals:               traffic(),
		QueueCap:               queueCap,
		Policy:                 pol,
		Stream:                 rng.New(seed),
		LatencyWeight:          0.02, // deliberately soft: QoS must do the work
		AllowZeroLatencyWeight: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	m, err := sim.Run(slots, nil)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func mustDev() *device.Slotted {
	dev, err := device.WLAN().Slot(slotSeconds)
	if err != nil {
		log.Fatal(err)
	}
	return dev
}

func main() {
	dev := mustDev()

	plain, err := core.New(core.Config{
		Device: dev, QueueCap: queueCap, LatencyWeight: 0.02,
		Stream: rng.New(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	qos, err := core.New(core.Config{
		Device: dev, QueueCap: queueCap, LatencyWeight: 0.02,
		QoS:    &core.QoSConfig{TargetBacklog: target, Eta: 0.05, AdaptEvery: 1000},
		Stream: rng.New(3),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The constrained model-based reference at the long-run mean rate.
	meanRate := traffic().MeanRate()
	d, err := mdp.BuildDPM(mdp.DPMConfig{
		Device: dev, ArrivalP: meanRate, QueueCap: queueCap, LatencyWeight: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	lpSol, err := stochpm.SolveLP(d, &stochpm.Constraint{MaxMeanBacklog: target})
	if err != nil {
		log.Fatal(err)
	}
	lpPol, err := stochpm.NewLPPolicy(d, lpSol, rng.New(4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("WLAN NIC, MMPP traffic (mean rate %.3f/slot), backlog budget %.1f:\n\n", meanRate, target)
	fmt.Printf("%-16s %10s %14s %12s\n", "policy", "power (W)", "mean backlog", "loss rate")
	for _, tc := range []struct {
		name string
		pol  slotsim.Policy
	}{
		{"q-dpm (plain)", plain},
		{"q-dpm (QoS)", qos},
		{"constrained-lp", lpPol},
	} {
		m := simulate(tc.pol, 17)
		fmt.Printf("%-16s %10.4f %14.3f %11.2f%%\n",
			tc.name, m.AvgPowerW(slotSeconds), m.MeanBacklog(), 100*m.LossRate())
	}
	fmt.Printf("\nQoS multiplier settled at λ=%.3f (plain Q-DPM has none);\n", qos.QosLambda())
	fmt.Println("the LP reference assumes the mean rate and full model knowledge.")
}
