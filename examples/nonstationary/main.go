// Nonstationary tracking — the paper's Fig. 2 scenario as a runnable
// walkthrough: piecewise-stationary input whose rate jumps at marked
// switching points, Q-DPM versus the full model-based adaptive pipeline
// (estimator + change detector + LP re-optimization).
//
//	go run ./examples/nonstationary
//	go run ./examples/nonstationary -parallel 4 -seed 301
//
// Watch the windowed energy-reduction chart: at each vertical bar the rate
// changes; Q-DPM's dip is short because every slot is an adaptation step,
// while the model-based pipeline must first detect the change, re-estimate,
// and re-solve. The figure's policy × seed replicas fan out across the
// experiment engine's worker pool; the recovery numbers reuse the
// figure's series, so nothing simulates twice.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiment"
)

func main() {
	var (
		segment  = flag.Int64("segment", 40000, "slots per stationary segment")
		parallel = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 301, "rng seed")
	)
	flag.Parse()

	ctx := context.Background()
	par := experiment.Parallel{Workers: *parallel}
	cfg := experiment.Fig2Config{
		Rates:                []float64{0.02, 0.30, 0.08, 0.25},
		SegmentSlots:         *segment,
		Window:               3000,
		Stride:               1000,
		Seeds:                []uint64{*seed},
		OptimizeLatencySlots: 2000,
	}
	fig, err := experiment.Fig2Ctx(ctx, cfg, par)
	if err != nil {
		log.Fatal(err)
	}
	if err := fig.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Quantify the recoveries from the figure's own series — with one
	// seed the figure's per-policy means ARE the replica series, so no
	// re-simulation is needed.
	swF := make([]float64, len(fig.VLines))
	segEnd := make([]float64, len(fig.VLines))
	for i, sw := range fig.VLines {
		swF[i] = sw
		segEnd[i] = float64(cfg.SegmentSlots) * float64(i+2)
	}
	fmt.Println("\nrecovery after each switch (slots until the series settles):")
	for _, series := range fig.Series {
		if series.Name == "timeout" {
			continue // fixed timeout never adapts; recovery is not meaningful
		}
		rec := experiment.RecoverySlots(series, swF, segEnd, 0.05)
		fmt.Printf("  %-12s %v\n", series.Name, rec)
	}
}
