// Nonstationary tracking — the paper's Fig. 2 scenario as a runnable
// walkthrough: piecewise-stationary input whose rate jumps at marked
// switching points, Q-DPM versus the full model-based adaptive pipeline
// (estimator + change detector + LP re-optimization).
//
//	go run ./examples/nonstationary
//
// Watch the windowed energy-reduction chart: at each vertical bar the rate
// changes; Q-DPM's dip is short because every slot is an adaptation step,
// while the model-based pipeline must first detect the change, re-estimate,
// and re-solve.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiment"
)

func main() {
	cfg := experiment.Fig2Config{
		Rates:                []float64{0.02, 0.30, 0.08, 0.25},
		SegmentSlots:         40000,
		Window:               3000,
		Stride:               1000,
		Seeds:                []uint64{301},
		OptimizeLatencySlots: 2000,
	}
	fig, err := experiment.Fig2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := fig.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Quantify the recoveries.
	sc, switches, err := experiment.Fig2Scenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	swF := make([]float64, len(switches))
	segEnd := make([]float64, len(switches))
	for i, sw := range switches {
		swF[i] = float64(sw)
		segEnd[i] = float64(cfg.SegmentSlots) * float64(i+2)
	}
	fmt.Println("\nrecovery after each switch (slots until the series settles):")
	for _, pf := range []experiment.PolicyFactory{
		experiment.QDPMTrackingFactory(sc.Device),
		experiment.AdaptiveLPFactory(sc.Device, cfg.Rates[0], cfg.OptimizeLatencySlots),
	} {
		series, err := experiment.WindowedEnergyReductionSeries(sc, pf, cfg.Seeds[0], cfg.Window, cfg.Stride)
		if err != nil {
			log.Fatal(err)
		}
		rec := experiment.RecoverySlots(series, swF, segEnd, 0.05)
		fmt.Printf("  %-12s %v\n", pf.Name, rec)
	}
}
